// T1 — Theorem 1: Byzantine LA requires n ≥ 3f+1.
//
// Three panels:
//  (a) n = 3f+1: WTS is safe AND live across f and adversaries;
//  (b) n = 3f:   WTS loses liveness (quorum unreachable) but never safety;
//  (c) n = 3f with majority quorums (crash-only baseline) under the
//      Theorem 1 split schedule: liveness kept, Comparability broken.

#include "bench_util.hpp"
#include "core/adversary.hpp"
#include "core/baseline.hpp"
#include "net/delay_model.hpp"
#include "testutil/properties.hpp"
#include "testutil/scenario.hpp"

using namespace bla;

int main() {
  bench::header("T1 / Theorem 1 — necessity of n >= 3f+1",
                "no algorithm solves Byzantine LA with n <= 3f; WTS achieves "
                "it at n = 3f+1");

  bool all_ok = true;

  bench::row("%-28s %4s %4s %8s %8s %12s", "panel", "n", "f", "decided",
             "safe", "seeds");
  // (a) n = 3f+1.
  for (std::size_t f = 1; f <= 4; ++f) {
    const std::size_t n = 3 * f + 1;
    std::size_t live = 0, safe = 0, runs = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      testutil::ScenarioOptions options;
      options.n = n;
      options.f = f;
      options.seed = seed;
      options.adversary = [&](net::NodeId id) -> std::unique_ptr<net::IProcess> {
        if (id % 2 == 0) return std::make_unique<core::PromiscuousAcker>();
        return std::make_unique<core::UnsafeNackSpammer>();
      };
      testutil::WtsScenario scenario(std::move(options));
      scenario.run();
      ++runs;
      if (scenario.all_correct_decided()) ++live;
      if (testutil::check_comparability(scenario.decisions()).empty()) ++safe;
    }
    bench::row("%-28s %4zu %4zu %7zu/ %7zu/ %9zu", "WTS @ n=3f+1", n, f, live,
               safe, runs);
    all_ok = all_ok && live == runs && safe == runs;
  }

  // (b) n = 3f: WTS stalls but stays safe.
  for (std::size_t f = 1; f <= 3; ++f) {
    const std::size_t n = 3 * f;
    std::size_t live = 0, safe = 0, runs = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      testutil::ScenarioOptions options;
      options.n = n;
      options.f = f;
      options.seed = seed;
      testutil::WtsScenario scenario(std::move(options));
      scenario.run();
      ++runs;
      if (scenario.all_correct_decided()) ++live;
      if (testutil::check_comparability(scenario.decisions()).empty()) ++safe;
    }
    bench::row("%-28s %4zu %4zu %7zu/ %7zu/ %9zu", "WTS @ n=3f (stalls)", n, f,
               live, safe, runs);
    all_ok = all_ok && live == 0 && safe == runs;
  }

  // (c) majority-quorum baseline at n = 3 under the split schedule.
  {
    std::size_t live = 0, violated = 0, runs = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      net::SimNetwork net(
          {.seed = seed,
           .delay = std::make_unique<net::TargetedDelay>(
               std::make_unique<net::ConstantDelay>(1.0),
               [](net::NodeId from, net::NodeId to) {
                 return (from == 0 && to == 1) || (from == 1 && to == 0);
               },
               200.0)});
      auto* p0 =
          new core::BaselineLaProcess({0, 3}, lattice::value_from("x0"));
      auto* p1 =
          new core::BaselineLaProcess({1, 3}, lattice::value_from("x1"));
      net.add_process(std::unique_ptr<net::IProcess>(p0));
      net.add_process(std::unique_ptr<net::IProcess>(p1));
      net.add_process(std::make_unique<core::PromiscuousAcker>());
      net.run(UINT64_MAX, [&] { return net.now() > 100.0; });
      ++runs;
      if (p0->has_decided() && p1->has_decided()) {
        ++live;
        if (!testutil::check_comparability({p0->decision(), p1->decision()})
                 .empty()) {
          ++violated;
        }
      }
    }
    bench::row("%-28s %4d %4d %7zu/ %8s %9zu", "majority quorum @ n=3f", 3, 1,
               live, "BROKEN", runs);
    all_ok = all_ok && live == runs && violated == runs;
    bench::row("  -> comparability violated in %zu/%zu split-schedule runs",
               violated, runs);
  }

  bench::verdict(all_ok,
                 "3f+1 suffices (safe+live); 3f forces choosing: WTS keeps "
                 "safety and stalls, majority quorums stay live and split");
  return all_ok ? 0 : 1;
}
