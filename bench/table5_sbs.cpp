// T5 — §8/Theorem 8: SbS decides within 5+4f message delays with O(n)
// messages per proposer when f = O(1); WTS trades the opposite way
// (2f+5 delays, O(n²) messages). Three panels: the delay bound, the
// message scaling at fixed f, and the WTS↔SbS crossover (who wins on
// messages, and what SbS pays in bytes).

#include "bench_util.hpp"
#include "testutil/scenario.hpp"

using namespace bla;

int main() {
  bench::header("T5 / §8, Theorem 8 — SbS: 5+4f delays, O(n) msgs/proposer",
                "SbS swaps WTS's O(n^2) messages for O(n) bigger messages; "
                "decision within 5+4f delays");

  bool all_ok = true;

  // Panel 1: delay bound across f.
  bench::row("panel 1: decision latency (message delays), silent Byzantine");
  bench::row("%4s %4s %10s %10s %8s", "n", "f", "worst", "bound", "ok");
  for (std::size_t f = 0; f <= 5; ++f) {
    const std::size_t n = 3 * f + 1;
    double worst = 0;
    bool live = true;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      testutil::SbsScenarioOptions options;
      options.n = n;
      options.f = f;
      options.seed = seed;
      testutil::SbsScenario scenario(std::move(options));
      scenario.run();
      live = live && scenario.all_correct_decided();
      worst = std::max(worst, scenario.max_decide_time());
    }
    const double bound = static_cast<double>(5 + 4 * f);
    const bool ok = live && worst <= bound + 1e-9;
    all_ok = all_ok && ok;
    bench::row("%4zu %4zu %10.1f %10.0f %8s", n, f, worst, bound,
               ok ? "yes" : "NO");
  }

  // Panel 2+3: message/byte scaling and the crossover against WTS.
  bench::row("%s", "");
  bench::row("panel 2: per-process traffic at fixed f=1 (msgs linear, bytes "
             "superlinear) vs WTS");
  bench::row("%4s | %12s %14s | %12s %14s | %10s", "n", "sbs msg/proc",
             "sbs bytes/proc", "wts msg/proc", "wts bytes/proc", "msg win");
  std::vector<double> sbs_msgs;
  for (const std::size_t n : {4u, 8u, 16u, 32u, 48u}) {
    testutil::SbsScenarioOptions sbs_options;
    sbs_options.n = n;
    sbs_options.f = 1;
    testutil::SbsScenario sbs(std::move(sbs_options));
    sbs.run();
    all_ok = all_ok && sbs.all_correct_decided();
    const double sbs_msg =
        static_cast<double>(sbs.network().total_messages()) / n;
    const double sbs_bytes =
        static_cast<double>(sbs.network().total_bytes()) / n;
    sbs_msgs.push_back(sbs_msg);

    testutil::ScenarioOptions wts_options;
    wts_options.n = n;
    wts_options.f = 1;
    testutil::WtsScenario wts(std::move(wts_options));
    wts.run();
    all_ok = all_ok && wts.all_correct_decided();
    const double wts_msg =
        static_cast<double>(wts.network().total_messages()) / n;
    const double wts_bytes =
        static_cast<double>(wts.network().total_bytes()) / n;

    bench::row("%4zu | %12.0f %14.0f | %12.0f %14.0f | %10s", n, sbs_msg,
               sbs_bytes, wts_msg, wts_bytes,
               sbs_msg < wts_msg ? "SbS" : "WTS");
  }
  // Linearity: doubling n should at most ~double+slack SbS messages.
  for (std::size_t i = 1; i < sbs_msgs.size(); ++i) {
    all_ok = all_ok && sbs_msgs[i] < sbs_msgs[i - 1] * 3.0;
  }

  bench::verdict(all_ok,
                 "SbS meets 5+4f and its per-proposer message count grows "
                 "linearly, beating WTS on message count as n grows while "
                 "paying in message size");
  return all_ok ? 0 : 1;
}
