// B2 — digest-only dissemination (src/store/): total network bytes per
// committed command, full-frame vs digest-reference wire formats.
//
// PR 1's batching made each lattice value a multi-KB SignedCommandBatch,
// so every layer that re-ships values — Bracha ECHO/READY (n² per
// broadcast), GWTS cumulative ack sets (an O(n²) RBC per ack), GSbS
// safe-acks/proposals/certificates (every batch dragged along with its
// quorum of proofs) — multiplied a per-command byte cost. Digest
// dissemination ships 32-byte references instead and pulls missing
// bodies on demand.
//
// This bench streams a fixed workload end-to-end through the batched RSM
// on the simulator and divides the network's *total* byte count (every
// frame on every link, clients included) by the number of commands, for
// n ∈ {4, 7}, B ∈ {1, 64, 256}, both engines, both wire formats.
//
// Verdict (the ISSUE 5 acceptance bar): at n=4, B=64 the digest format
// must cut bytes/command by ≥ 10x for BOTH engines. Results are also
// written as JSON (argv[1], default BENCH_bytes_per_command.json).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "testutil/batch_scenario.hpp"

using namespace bla;

namespace {

struct Case {
  std::size_t n = 4;
  std::size_t f = 1;
  std::size_t batch_size = 64;
  core::EngineKind engine = core::EngineKind::kGwts;
  bool digest_refs = true;
};

struct Result {
  bool live = false;
  bool state_ok = false;
  double bytes_per_cmd = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t fetches = 0;  // body pulls across correct replicas
};

Result run_case(const Case& c, std::size_t total_commands) {
  testutil::BatchRsmScenarioOptions options;
  options.n = c.n;
  options.f = c.f;
  options.engine = c.engine;
  options.clients = 1;
  options.commands_per_client = total_commands;
  options.batch_size = c.batch_size;
  options.max_in_flight = 4;
  options.max_rounds = total_commands + 64;
  options.digest_refs = c.digest_refs;
  testutil::BatchRsmScenario scenario(std::move(options));
  scenario.run_until_done();

  Result r;
  r.live = scenario.all_clients_done();
  r.total_bytes = scenario.network().total_bytes();
  r.messages = scenario.network().total_messages();
  r.bytes_per_cmd =
      static_cast<double>(r.total_bytes) / static_cast<double>(total_commands);
  const core::ValueSet expected = scenario.expected_commands();
  bool state_ok = true;
  for (std::size_t i = 0; i < 2 && i < scenario.correct_replicas().size();
       ++i) {
    state_ok =
        state_ok && expected.leq(scenario.correct_replicas()[i]->state());
  }
  r.state_ok = state_ok;
  return r;
}

const char* engine_name(core::EngineKind kind) {
  return kind == core::EngineKind::kGwts ? "GWTS" : "GSbS";
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("B2 — digest-only dissemination: network bytes per command",
                "shipping 32-byte body references (RBC digests, GWTS digest "
                "ack sets, GSbS digest safe-acks/certs) cuts wire bytes per "
                "committed command by ≥10x at n=4, B=64");

  const std::size_t kTotal = 256;
  bool all_ok = true;

  bench::row("%-6s %3s %5s | %14s %14s | %8s", "engine", "n", "B",
             "full B/cmd", "digest B/cmd", "ratio");

  std::string json = "{\n  \"workload_commands\": 256,\n  \"results\": [\n";
  bool first = true;

  for (const core::EngineKind engine :
       {core::EngineKind::kGwts, core::EngineKind::kGsbs}) {
    for (const std::size_t n : {std::size_t{4}, std::size_t{7}}) {
      const std::size_t f = core::max_faulty(n);
      for (const std::size_t b : {1u, 64u, 256u}) {
        Case c{n, f, b, engine, false};
        const Result full = run_case(c, kTotal);
        c.digest_refs = true;
        const Result digest = run_case(c, kTotal);
        const double ratio = full.bytes_per_cmd / digest.bytes_per_cmd;
        all_ok = all_ok && full.live && digest.live && full.state_ok &&
                 digest.state_ok;
        if (n == 4 && b == 64) all_ok = all_ok && ratio >= 10.0;
        bench::row("%-6s %3zu %5zu | %14.0f %14.0f | %7.1fx",
                   engine_name(engine), n, b, full.bytes_per_cmd,
                   digest.bytes_per_cmd, ratio);
        char row[512];
        std::snprintf(
            row, sizeof(row),
            "    {\"engine\": \"%s\", \"n\": %zu, \"f\": %zu, \"batch\": %zu, "
            "\"full_bytes_per_cmd\": %.1f, \"digest_bytes_per_cmd\": %.1f, "
            "\"reduction\": %.1f, \"full_total_bytes\": %llu, "
            "\"digest_total_bytes\": %llu, \"full_msgs\": %llu, "
            "\"digest_msgs\": %llu}",
            engine_name(engine), n, f, b, full.bytes_per_cmd,
            digest.bytes_per_cmd, ratio,
            static_cast<unsigned long long>(full.total_bytes),
            static_cast<unsigned long long>(digest.total_bytes),
            static_cast<unsigned long long>(full.messages),
            static_cast<unsigned long long>(digest.messages));
        if (!first) json += ",\n";
        json += row;
        first = false;
      }
    }
  }
  json += "\n  ]\n}\n";

  const char* path = argc > 1 ? argv[1] : "BENCH_bytes_per_command.json";
  if (std::FILE* out = std::fopen(path, "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    bench::row("json written to %s", path);
  }

  bench::verdict(all_ok,
                 "workload lands durably in every configuration and digest "
                 "dissemination yields >=10x fewer bytes/command at n=4, "
                 "B=64 on both engines");
  return all_ok ? 0 : 1;
}
