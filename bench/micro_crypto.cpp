// M1 — google-benchmark micro benches for the crypto substrate: hashing,
// MACs, Ed25519 sign/verify. These quantify the per-message cost floor
// of the §8 signature-based protocols.

#include <benchmark/benchmark.h>

#include "crypto/ed25519.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "crypto/signer.hpp"

namespace {

using namespace bla;

void BM_Sha256(benchmark::State& state) {
  const wire::Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Sha512(benchmark::State& state) {
  const wire::Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha512::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const wire::Bytes key(32, 0x11);
  const wire::Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_Ed25519Sign(benchmark::State& state) {
  const auto kp = crypto::ed25519::keypair_from_label(1);
  const wire::Bytes msg(256, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ed25519::sign(kp, msg));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  const auto kp = crypto::ed25519::keypair_from_label(1);
  const wire::Bytes msg(256, 0x42);
  const auto sig = crypto::ed25519::sign(kp, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ed25519::verify(kp.public_key, msg, sig));
  }
}
BENCHMARK(BM_Ed25519Verify);

void BM_SignerSign(benchmark::State& state) {
  auto set = state.range(0) == 0 ? crypto::make_hmac_signer_set(4)
                                 : crypto::make_ed25519_signer_set(4);
  auto signer = set->signer_for(0);
  const wire::Bytes msg(256, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer->sign(msg));
  }
}
BENCHMARK(BM_SignerSign)->Arg(0)->Arg(1);  // 0 = HMAC oracle, 1 = Ed25519

}  // namespace

BENCHMARK_MAIN();
